// Command benchdiff compares a fresh bench2json report against a
// checked-in reference and fails (exit 1) when any benchmark slowed by
// more than a tolerance factor. It is the CI bench-regression gate: the
// tolerance is deliberately generous (default 10×) so that machine and
// load variance pass, while order-of-magnitude regressions — an
// accidentally quadratic loop, a lost fast path — fail the build.
//
// Usage:
//
//	benchdiff -base BENCH_interp.json [-tol 10] [-min-ns 1000] current.json
//
// Benchmark names are compared after stripping go test's trailing
// -GOMAXPROCS suffix (BenchmarkFoo-8 vs BenchmarkFoo), so a reference
// recorded on one machine gates runs on machines with different core
// counts. Sub-benchmark names must therefore avoid a bare trailing
// -digits group — use key=value style (workers=8) instead.
//
// Benchmarks present in the reference but missing from the current
// report fail the comparison (a silently vanished benchmark usually
// means a renamed or deleted hot path); extra benchmarks in the current
// report are reported but never fail. Results faster than -min-ns in
// the reference are reported but not gated: sub-microsecond timings
// under 1x/100x smoke iteration counts are dominated by timer noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report mirrors the fields of cmd/bench2json's output that the
// comparison needs.
type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

func main() {
	basePath := flag.String("base", "", "checked-in reference report (required)")
	tol := flag.Float64("tol", 10, "fail when current ns/op exceeds reference ns/op by this factor")
	minNs := flag.Float64("min-ns", 1000, "skip gating benchmarks whose reference ns/op is below this (noise floor)")
	flag.Parse()

	if *basePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -base REFERENCE.json [-tol N] [-min-ns N] CURRENT.json")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	rows, regressions := compare(base, cur, *tol, *minNs)
	for _, l := range renderText(rows) {
		fmt.Println(l)
	}
	// On GitHub Actions, append the comparison as a markdown table to
	// the run's step summary so regressions are readable from the run
	// page instead of raw logs.
	if path := os.Getenv("GITHUB_STEP_SUMMARY"); path != "" {
		if err := appendStepSummary(path, renderMarkdown(rows, *basePath, *tol)); err != nil {
			fmt.Fprintln(os.Stderr, "benchdiff: step summary:", err)
		}
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %gx tolerance\n", len(regressions), *tol)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %gx of %s\n", len(base.Benchmarks), *tol, *basePath)
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &r, nil
}

// A row is one benchmark's comparison outcome, rendered both as a
// plain-text log line and as a markdown table row.
type row struct {
	status  string // "ok", "REGRESS", "MISSING", "noise", "SKIP", "new"
	name    string
	baseNs  float64
	curNs   float64
	ratio   float64 // curNs / baseNs when both are valid, else 0
	comment string
}

// compare produces one row per reference benchmark (plus informational
// rows for new benchmarks) and returns the names that regressed beyond
// tol. Benchmarks below the minNs noise floor, or with no timing in
// the reference, are reported but never gate.
func compare(base, cur *report, tol, minNs float64) (rows []row, regressions []string) {
	current := map[string]float64{}
	for _, b := range cur.Benchmarks {
		name := canonical(b.Name)
		if _, ok := current[name]; !ok {
			current[name] = b.NsPerOp
		}
	}
	seen := map[string]bool{}
	for _, b := range base.Benchmarks {
		name := canonical(b.Name)
		if seen[name] {
			continue // keep first occurrence, like go test tooling
		}
		seen[name] = true
		now, ok := current[name]
		r := row{name: b.Name, baseNs: b.NsPerOp, curNs: now}
		if ok && b.NsPerOp > 0 && now > 0 {
			r.ratio = now / b.NsPerOp
		}
		switch {
		case !ok:
			r.status = "MISSING"
			r.comment = "not in current report"
			regressions = append(regressions, b.Name)
		case b.NsPerOp <= 0 || now <= 0:
			r.status = "SKIP"
			r.comment = "no ns/op to compare"
		case b.NsPerOp < minNs:
			r.status = "noise"
			r.comment = fmt.Sprintf("below %.0f ns floor", minNs)
		case now > b.NsPerOp*tol:
			r.status = "REGRESS"
			r.comment = fmt.Sprintf("%.1fx > %gx", r.ratio, tol)
			regressions = append(regressions, b.Name)
		default:
			r.status = "ok"
		}
		rows = append(rows, r)
	}
	for _, b := range cur.Benchmarks {
		if !seen[canonical(b.Name)] {
			seen[canonical(b.Name)] = true
			rows = append(rows, row{
				status: "new", name: b.Name, curNs: b.NsPerOp,
				comment: "not in reference",
			})
		}
	}
	return rows, regressions
}

// renderText renders the classic log-line form of the comparison.
func renderText(rows []row) []string {
	var lines []string
	for _, r := range rows {
		switch r.status {
		case "MISSING":
			lines = append(lines, fmt.Sprintf("MISSING  %-50s (reference %.0f ns/op)", r.name, r.baseNs))
		case "SKIP":
			lines = append(lines, fmt.Sprintf("SKIP     %-50s no ns/op to compare", r.name))
		case "noise":
			lines = append(lines, fmt.Sprintf("noise    %-50s %.0f -> %.0f ns/op (%s)", r.name, r.baseNs, r.curNs, r.comment))
		case "REGRESS":
			lines = append(lines, fmt.Sprintf("REGRESS  %-50s %.0f -> %.0f ns/op (%s)", r.name, r.baseNs, r.curNs, r.comment))
		case "new":
			lines = append(lines, fmt.Sprintf("new      %-50s %.0f ns/op (not in reference)", r.name, r.curNs))
		default:
			lines = append(lines, fmt.Sprintf("ok       %-50s %.0f -> %.0f ns/op (%.2fx)", r.name, r.baseNs, r.curNs, r.ratio))
		}
	}
	return lines
}

// renderMarkdown renders the comparison as a GitHub-flavored markdown
// table for the Actions step summary. Regressions float to the top so
// the failure cause is the first row on the run page.
func renderMarkdown(rows []row, basePath string, tol float64) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### Bench regression gate (`%s`, tolerance %gx)\n\n", basePath, tol)
	sb.WriteString("| Status | Benchmark | Reference ns/op | Current ns/op | Ratio | Note |\n")
	sb.WriteString("|---|---|---:|---:|---:|---|\n")
	ordered := make([]row, 0, len(rows))
	for _, r := range rows {
		if r.status == "REGRESS" || r.status == "MISSING" {
			ordered = append(ordered, r)
		}
	}
	for _, r := range rows {
		if r.status != "REGRESS" && r.status != "MISSING" {
			ordered = append(ordered, r)
		}
	}
	ns := func(v float64) string {
		if v <= 0 {
			return "—"
		}
		return fmt.Sprintf("%.0f", v)
	}
	for _, r := range ordered {
		status := r.status
		switch r.status {
		case "REGRESS", "MISSING":
			status = "❌ " + r.status
		case "ok":
			status = "✅ ok"
		}
		ratio := "—"
		if r.ratio > 0 {
			ratio = fmt.Sprintf("%.2fx", r.ratio)
		}
		fmt.Fprintf(&sb, "| %s | `%s` | %s | %s | %s | %s |\n",
			status, r.name, ns(r.baseNs), ns(r.curNs), ratio, r.comment)
	}
	return sb.String()
}

// appendStepSummary appends markdown to the GitHub Actions step-summary
// file (the file accumulates across steps, so append, never truncate).
func appendStepSummary(path, md string) error {
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(md + "\n"); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// canonical strips go test's trailing -GOMAXPROCS suffix so reports
// from machines with different core counts compare by benchmark
// identity. Only a final all-digit group preceded by '-' is removed.
func canonical(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
