// Command benchdiff compares a fresh bench2json report against a
// checked-in reference and fails (exit 1) when any benchmark slowed by
// more than a tolerance factor. It is the CI bench-regression gate: the
// tolerance is deliberately generous (default 10×) so that machine and
// load variance pass, while order-of-magnitude regressions — an
// accidentally quadratic loop, a lost fast path — fail the build.
//
// Usage:
//
//	benchdiff -base BENCH_interp.json [-tol 10] [-min-ns 1000] current.json
//
// Benchmark names are compared after stripping go test's trailing
// -GOMAXPROCS suffix (BenchmarkFoo-8 vs BenchmarkFoo), so a reference
// recorded on one machine gates runs on machines with different core
// counts. Sub-benchmark names must therefore avoid a bare trailing
// -digits group — use key=value style (workers=8) instead.
//
// Benchmarks present in the reference but missing from the current
// report fail the comparison (a silently vanished benchmark usually
// means a renamed or deleted hot path); extra benchmarks in the current
// report are reported but never fail. Results faster than -min-ns in
// the reference are reported but not gated: sub-microsecond timings
// under 1x/100x smoke iteration counts are dominated by timer noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
)

// report mirrors the fields of cmd/bench2json's output that the
// comparison needs.
type report struct {
	Benchmarks []benchmark `json:"benchmarks"`
}

type benchmark struct {
	Name    string  `json:"name"`
	NsPerOp float64 `json:"ns_per_op"`
}

func main() {
	basePath := flag.String("base", "", "checked-in reference report (required)")
	tol := flag.Float64("tol", 10, "fail when current ns/op exceeds reference ns/op by this factor")
	minNs := flag.Float64("min-ns", 1000, "skip gating benchmarks whose reference ns/op is below this (noise floor)")
	flag.Parse()

	if *basePath == "" || flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff -base REFERENCE.json [-tol N] [-min-ns N] CURRENT.json")
		os.Exit(2)
	}
	base, err := load(*basePath)
	if err != nil {
		fatal(err)
	}
	cur, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	lines, regressions := compare(base, cur, *tol, *minNs)
	for _, l := range lines {
		fmt.Println(l)
	}
	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) beyond %gx tolerance\n", len(regressions), *tol)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d benchmarks within %gx of %s\n", len(base.Benchmarks), *tol, *basePath)
}

func load(path string) (*report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var r report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(r.Benchmarks) == 0 {
		return nil, fmt.Errorf("%s: no benchmarks", path)
	}
	return &r, nil
}

// compare renders one line per reference benchmark and returns the
// names that regressed beyond tol. Benchmarks below the minNs noise
// floor, or with no timing in the reference, are reported but never
// gate.
func compare(base, cur *report, tol, minNs float64) (lines, regressions []string) {
	current := map[string]float64{}
	for _, b := range cur.Benchmarks {
		name := canonical(b.Name)
		if _, ok := current[name]; !ok {
			current[name] = b.NsPerOp
		}
	}
	seen := map[string]bool{}
	for _, b := range base.Benchmarks {
		name := canonical(b.Name)
		if seen[name] {
			continue // keep first occurrence, like go test tooling
		}
		seen[name] = true
		now, ok := current[name]
		switch {
		case !ok:
			lines = append(lines, fmt.Sprintf("MISSING  %-50s (reference %.0f ns/op)", b.Name, b.NsPerOp))
			regressions = append(regressions, b.Name)
		case b.NsPerOp <= 0 || now <= 0:
			lines = append(lines, fmt.Sprintf("SKIP     %-50s no ns/op to compare", b.Name))
		case b.NsPerOp < minNs:
			lines = append(lines, fmt.Sprintf("noise    %-50s %.0f -> %.0f ns/op (below %.0f ns floor)", b.Name, b.NsPerOp, now, minNs))
		case now > b.NsPerOp*tol:
			lines = append(lines, fmt.Sprintf("REGRESS  %-50s %.0f -> %.0f ns/op (%.1fx > %gx)", b.Name, b.NsPerOp, now, now/b.NsPerOp, tol))
			regressions = append(regressions, b.Name)
		default:
			lines = append(lines, fmt.Sprintf("ok       %-50s %.0f -> %.0f ns/op (%.2fx)", b.Name, b.NsPerOp, now, now/b.NsPerOp))
		}
	}
	for _, b := range cur.Benchmarks {
		if !seen[canonical(b.Name)] {
			seen[canonical(b.Name)] = true
			lines = append(lines, fmt.Sprintf("new      %-50s %.0f ns/op (not in reference)", b.Name, b.NsPerOp))
		}
	}
	return lines, regressions
}

// canonical strips go test's trailing -GOMAXPROCS suffix so reports
// from machines with different core counts compare by benchmark
// identity. Only a final all-digit group preceded by '-' is removed.
func canonical(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i <= 0 || i == len(name)-1 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	return name[:i]
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
