// Command irun executes a program (sci source or textual IR) on the
// deterministic interpreter with the simulated MPI runtime.
//
// Exit status: 0 for a clean run, 1 for any trap, 3 for a structural
// MPI deadlock (the per-rank attribution report is printed), 2 for a
// usage error.
//
// Usage:
//
//	irun [-ranks N] [-heap MB] [-budget N] [-watchdog D] [-sites] prog.{sci,ir}
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
)

func main() {
	ranks := flag.Int("ranks", 1, "number of simulated MPI ranks")
	heapMB := flag.Int64("heap", 64, "per-rank heap size in MiB")
	budget := flag.Int64("budget", 0, "per-rank dynamic instruction budget (0 = unlimited)")
	watchdog := flag.Duration("watchdog", 0, "defense-in-depth wall-clock bound per blocked MPI op (0 = default 60s); deadlocks are detected structurally and instantly regardless")
	sites := flag.Bool("sites", false, "print the 10 hottest static instruction sites")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: irun [-ranks N] [-heap MB] [-budget N] [-watchdog D] [-sites] prog.{sci,ir}")
		os.Exit(2)
	}
	path := flag.Arg(0)
	src, err := os.ReadFile(path)
	if err != nil {
		fatal(err)
	}
	var m *ir.Module
	if strings.HasSuffix(path, ".ir") {
		m, err = ir.Parse(string(src))
		if err == nil {
			err = ir.Verify(m)
		}
		if err == nil {
			m.AssignSiteIDs()
		}
	} else {
		m, err = lang.Compile(string(src))
	}
	if err != nil {
		fatal(err)
	}
	prog, err := interp.Compile(m, nil)
	if err != nil {
		fatal(err)
	}
	cfg := interp.Config{
		Ranks:      *ranks,
		HeapBytes:  *heapMB << 20,
		MaxInstrs:  *budget,
		CountSites: *sites,
		Watchdog:   *watchdog,
	}
	res := interp.Run(prog, cfg)

	if res.Trap != interp.TrapNone {
		fmt.Printf("trap: %v on rank %d (%s)\n", res.Trap, res.TrapRank, res.TrapMsg)
	}
	if res.Deadlock != nil {
		fmt.Print(res.Deadlock.String())
	}
	fmt.Printf("dynamic instructions: total=%d makespan=%d per-rank=%v\n",
		res.TotalDyn, res.MaxRankDyn, res.DynInstrs)
	if len(res.OutputF) > 0 {
		fmt.Printf("float outputs (%d):", len(res.OutputF))
		for i, v := range res.OutputF {
			if i == 16 {
				fmt.Printf(" ... (%d more)", len(res.OutputF)-16)
				break
			}
			fmt.Printf(" %g", v)
		}
		fmt.Println()
	}
	if len(res.OutputI) > 0 {
		fmt.Printf("int outputs (%d):", len(res.OutputI))
		for i, v := range res.OutputI {
			if i == 16 {
				fmt.Printf(" ... (%d more)", len(res.OutputI)-16)
				break
			}
			fmt.Printf(" %d", v)
		}
		fmt.Println()
	}
	if *sites {
		printHotSites(m, res)
	}
	if res.Trap == interp.TrapDeadlock {
		os.Exit(3)
	}
	if res.Trap != interp.TrapNone {
		os.Exit(1)
	}
}

// printHotSites lists the most-executed static instructions.
func printHotSites(m *ir.Module, res *interp.Result) {
	table := m.InstrBySite()
	type hot struct {
		site  int
		count int64
	}
	var hs []hot
	for s, c := range res.SiteCounts {
		if c > 0 {
			hs = append(hs, hot{s, c})
		}
	}
	for i := 0; i < len(hs); i++ {
		for j := i + 1; j < len(hs); j++ {
			if hs[j].count > hs[i].count {
				hs[i], hs[j] = hs[j], hs[i]
			}
		}
	}
	if len(hs) > 10 {
		hs = hs[:10]
	}
	fmt.Println("hottest sites:")
	for _, h := range hs {
		in := table[h.site]
		loc := "?"
		if in != nil {
			loc = fmt.Sprintf("@%s: %s", in.Block().Func().Name(), in)
		}
		fmt.Printf("  %12d  %s\n", h.count, loc)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "irun:", err)
	os.Exit(1)
}
