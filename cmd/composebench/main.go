// Command composebench records the sectioned campaign's trial-count
// advantage over a monolithic campaign at equal site coverage, for
// every evaluation workload. Both counts are analytic — the sectioned
// total is the per-section allocation Σ_s ceil(coverage·P_s/Dmin_s)
// and the monolithic equivalent is ceil(coverage·P/Dmin) with the
// global minimum site depth — so the numbers are exact, deterministic,
// and machine-independent, which makes them safe to gate tightly.
//
// The output is a bench2json-format report (BENCH_compose.json when
// checked in): each workload contributes a sectioned-trials and a
// monolithic-equivalent entry, with the count stored as ns_per_op so
// cmd/benchdiff can gate it — a sectioned allocation that balloons
// past the tolerance fails CI like any other perf regression. The
// command itself additionally enforces the headline claim: the
// aggregate reduction must be at least -min-reduction (default 5×).
//
// Usage:
//
//	composebench [-o BENCH_compose.json] [-coverage N] [-max-per-section N] [-min-reduction X]
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"ipas/internal/fault"
	"ipas/internal/workloads"
)

type benchmark struct {
	Name       string  `json:"name"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

type report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write the JSON report to this file (default stdout)")
	coverage := flag.Int("coverage", 1, "coverage factor: expected injections per exercised site")
	maxPerSection := flag.Int("max-per-section", 0, "cap on any one section's trial budget (0 = uncapped)")
	minReduction := flag.Float64("min-reduction", 5, "fail unless aggregate monolithic/sectioned trial ratio reaches this")
	flag.Parse()

	rep := report{GOOS: runtime.GOOS, GOARCH: runtime.GOARCH, Package: "ipas/cmd/composebench"}
	var totalSec, totalMono int64
	for _, name := range workloads.Names {
		spec, err := workloads.Get(name, 1)
		if err != nil {
			fatal(err)
		}
		m, err := spec.Compile()
		if err != nil {
			fatal(err)
		}
		prog, err := fault.Compile(m)
		if err != nil {
			fatal(err)
		}
		c := &fault.Campaign{
			Prog: prog, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: 1,
			Sections: true, Coverage: *coverage, MaxPerSection: *maxPerSection,
		}
		prep, err := c.Prepare(context.Background())
		if err != nil {
			fatal(fmt.Errorf("%s: %w", name, err))
		}
		sp := prep.SectionPlan()
		totalSec += int64(sp.Total)
		totalMono += sp.MonoTrials
		rep.Benchmarks = append(rep.Benchmarks,
			benchmark{Name: "ComposeSectionedTrials/" + name, Iterations: 1, NsPerOp: float64(sp.Total)},
			benchmark{Name: "ComposeMonoEquivalent/" + name, Iterations: 1, NsPerOp: float64(sp.MonoTrials)},
		)
		fmt.Fprintf(os.Stderr, "composebench: %-6s %6d sectioned vs %10d monolithic-equivalent trials (%.0fx)\n",
			name, sp.Total, sp.MonoTrials, float64(sp.MonoTrials)/float64(sp.Total))
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(data)
	}

	ratio := float64(totalMono) / float64(totalSec)
	fmt.Fprintf(os.Stderr, "composebench: aggregate %d sectioned vs %d monolithic-equivalent trials (%.0fx reduction)\n",
		totalSec, totalMono, ratio)
	if ratio < *minReduction {
		fatal(fmt.Errorf("aggregate trial reduction %.2fx is below the required %.1fx", ratio, *minReduction))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "composebench:", err)
	os.Exit(1)
}
