// Command scic compiles a sci source file to the textual IPAS IR.
//
// Usage:
//
//	scic [-o out.ir] [-stats] prog.sci
package main

import (
	"flag"
	"fmt"
	"os"

	"ipas/internal/ir"
	"ipas/internal/lang"
)

func main() {
	out := flag.String("o", "", "output file (default: stdout)")
	stats := flag.Bool("stats", false, "print module statistics to stderr")
	optimize := flag.Bool("O", false, "run the full optimization pipeline (constant folding, CFG simplification)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: scic [-O] [-o out.ir] [-stats] prog.sci")
		os.Exit(2)
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	m, err := lang.Compile(string(src))
	if err != nil {
		fatal(err)
	}
	if *optimize {
		ir.Optimize(m)
		m.AssignSiteIDs()
	}
	text := ir.Print(m)
	if *stats {
		funcs := 0
		for _, f := range m.Funcs() {
			if !f.Builtin {
				funcs++
			}
		}
		fmt.Fprintf(os.Stderr, "%s: %d functions, %d static instructions, %d sites\n",
			flag.Arg(0), funcs, m.NumInstrs(), m.NumSites())
	}
	if *out == "" {
		fmt.Print(text)
		return
	}
	if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "scic:", err)
	os.Exit(1)
}
