// Command flipit runs a statistical fault-injection campaign (the
// paper's FlipIt role) against one of the five evaluation workloads and
// prints the outcome proportions of §5.5.
//
// The campaign is resilient: Ctrl-C (or -deadline expiry) checkpoints
// completed trials into the -journal file and exits; re-running with
// -resume continues from the journal and produces a result
// bit-identical to an uninterrupted run with the same seed. Trials that
// hit infrastructure errors are retried up to -max-retries times and
// then reported without aborting the campaign.
//
// With -shards K (K > 1) the campaign runs on the sharded engine: the
// trial space splits into K failure-isolated shards on a work-stealing
// scheduler, -journal names a directory holding one journal per shard
// plus the canonical merged.jsonl, and a shard that panics or expires
// its watchdog is quarantined and retried (-shard-retries) without
// touching its siblings. Results are bit-identical to -shards 1.
//
// With -remote URL the campaign is submitted to a campaignd
// coordinator instead of running in-process: the coordinator shards the
// trial space across its ipas-worker fleet under leases and journals
// every acked trial durably, and the result printed here is
// bit-identical to the local run with the same seed.
//
// With -sections the trial space stratifies over IR sections
// (outermost loop nests and the straight-line runs between them): each
// section gets its own budget from -coverage, the whole-program
// distribution is composed by population weighting, and -journal names
// a directory of per-section journals keyed by content fingerprint —
// re-running after a program edit re-injects only the sections whose
// IR changed.
//
// Usage:
//
//	flipit [-workload NAME] [-input N] [-n TRIALS] [-seed S] [-funcs]
//	       [-journal FILE|DIR [-resume]] [-deadline D] [-max-retries N]
//	       [-workers N] [-shards K] [-shard-retries N] [-watchdog D]
//	       [-remote URL] [-progress]
//	       [-sections [-coverage N] [-max-per-section N]]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"syscall"
	"text/tabwriter"
	"time"

	"ipas/internal/campaign"
	"ipas/internal/compose"
	"ipas/internal/dup"
	"ipas/internal/fault"
	"ipas/internal/fault/shard"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/stats"
	"ipas/internal/workloads"
)

func main() {
	name := flag.String("workload", "FFT", "workload: CoMD, HPCCG, AMG, FFT, IS, Jacobi, GradDesc")
	input := flag.Int("input", 1, "input level 1..4 (Table 5)")
	n := flag.Int("n", 200, "number of injection trials")
	seed := flag.Int64("seed", 1, "campaign RNG seed")
	funcs := flag.Bool("funcs", false, "break outcomes down per function")
	journalPath := flag.String("journal", "", "JSONL trial journal for checkpointing (enables resume)")
	resume := flag.Bool("resume", false, "continue a campaign from an existing non-empty -journal")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the campaign (0 = none)")
	maxRetries := flag.Int("max-retries", 2, "per-trial retries after infrastructure errors (0 = none)")
	workers := flag.Int("workers", 0, "concurrent trial workers (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 1, "failure-isolated campaign shards; >1 selects the sharded engine and makes -journal a directory")
	shardRetries := flag.Int("shard-retries", 2, "quarantine retries before a sick shard's remaining trials are failed (0 = none)")
	watchdog := flag.Duration("watchdog", 0, "per-MPI-op wall-clock watchdog (0 = interpreter default)")
	remote := flag.String("remote", "", "campaignd coordinator URL; submit the campaign there instead of running locally")
	progress := flag.Bool("progress", false, "report trial progress on stderr")
	sections := flag.Bool("sections", false, "sectioned campaign: stratify the trial space over IR sections and compose the whole-program distribution; -n is ignored (the per-section allocation sets the budget) and -journal names a directory of fingerprint-keyed per-section journals reused incrementally across program edits")
	coverage := flag.Int("coverage", 1, "sectioned coverage factor: expected injections per exercised site per section")
	maxPerSection := flag.Int("max-per-section", 0, "cap on any one section's trial budget (0 = engine default)")
	errorModel := flag.String("error-model", "", "error model for injected faults: single-bit (default), burst-N, random-N, correlated, sticky")
	modelReport := flag.Bool("model-report", false, "compare every built-in error model: unprotected outcome distribution plus DMR detector recall per model (two local campaigns per model; ignores -error-model, -journal, -shards, -remote, -sections)")
	flag.Parse()

	model, err := fault.ParseModel(*errorModel)
	if err != nil {
		fatal(err)
	}

	// Ctrl-C / SIGTERM cancels the campaign; completed trials are
	// already in the journal by the time we observe the cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	spec, err := workloads.Get(*name, *input)
	if err != nil {
		fatal(err)
	}
	m, err := spec.Compile()
	if err != nil {
		fatal(err)
	}
	prog, err := fault.Compile(m)
	if err != nil {
		fatal(err)
	}

	if *modelReport {
		if err := reportModels(ctx, m, spec, prog, *n, *seed, *workers, *maxRetries, *watchdog); err != nil {
			fatal(err)
		}
		return
	}

	if *remote != "" && *journalPath != "" {
		fatal(errors.New("-remote and -journal are mutually exclusive: remote campaigns journal durably on the coordinator"))
	}

	if *sections && *shards > 1 && *remote == "" {
		fatal(errors.New("-sections runs its own per-section worker pool locally; drop -shards (a -remote coordinator shards sectioned campaigns itself)"))
	}

	var journal *fault.Journal
	if *sections && *journalPath != "" {
		// Sectioned: -journal is a directory of per-section journals
		// keyed by content fingerprint. Reuse is always incremental —
		// unchanged sections restore, changed ones rebuild — so there
		// is no -resume guard to trip.
	} else if *journalPath != "" && *shards > 1 {
		// Sharded: -journal is a directory; the engine opens one
		// journal per shard and validates ownership itself. Only the
		// resume guard lives here.
		if entries, err := os.ReadDir(*journalPath); err == nil && len(entries) > 0 {
			if !*resume {
				fatal(fmt.Errorf("shard journal dir %s already holds %d files; pass -resume to continue it (or use a fresh directory)",
					*journalPath, len(entries)))
			}
			fmt.Fprintf(os.Stderr, "flipit: resuming from shard journals in %s\n", *journalPath)
		}
	} else if *journalPath != "" {
		journal, err = fault.OpenJournal(*journalPath)
		if err != nil {
			fatal(err)
		}
		defer journal.Close()
		if journal.Restored() > 0 && !*resume {
			fatal(fmt.Errorf("journal %s already holds %d trials; pass -resume to continue it (or delete the file)",
				*journalPath, journal.Restored()))
		}
		if *resume && journal.Restored() > 0 {
			fmt.Fprintf(os.Stderr, "flipit: resuming: %d trials restored from %s\n", journal.Restored(), *journalPath)
		}
	} else if *resume {
		fatal(fmt.Errorf("-resume requires -journal"))
	}

	cfg := spec.BaseConfig(1)
	cfg.Watchdog = *watchdog
	c := &fault.Campaign{
		Prog:       prog,
		Verify:     spec.Verify,
		Config:     cfg,
		Seed:       *seed,
		Model:      model,
		Workers:    *workers,
		MaxRetries: fault.ExplicitRetries(*maxRetries),
		Journal:    journal,
	}
	if *sections {
		c.Sections, c.Coverage, c.MaxPerSection = true, *coverage, *maxPerSection
	}
	if *progress {
		c.Progress = func(done, total, failed, deadlocked int) {
			if done%50 == 0 || done == total {
				fmt.Fprintf(os.Stderr, "flipit: %d/%d trials (%d failed, %d deadlocked)\n", done, total, failed, deadlocked)
			}
		}
	}

	var (
		res    *fault.CampaignResult
		secRes *fault.SectionResult
	)
	switch {
	case *remote != "":
		rspec := campaign.Spec{
			Workload:   *name,
			Input:      *input,
			Trials:     *n,
			Seed:       *seed,
			Model:      fault.ModelName(model),
			Shards:     *shards,
			Ranks:      1,
			MaxRetries: fault.ExplicitRetries(*maxRetries),
			Watchdog:   *watchdog,
		}
		if *sections {
			// The coordinator derives the trial count from the
			// per-section allocation.
			rspec.Sections, rspec.Coverage, rspec.MaxPerSection = true, *coverage, *maxPerSection
			rspec.Trials = 0
		}
		res, err = submitRemote(ctx, *remote, rspec, *progress)
		if err == nil && res.Failed > 0 {
			err = errors.New(res.ErrorSummary())
		}
		if *sections && res != nil {
			// Re-derive the (deterministic) section plan locally so the
			// remote trials can be composed: plans and populations are a
			// pure function of the spec.
			prep, perr := c.Prepare(ctx)
			if perr != nil {
				fatal(perr)
			}
			secRes = &fault.SectionResult{CampaignResult: res, Plan: prep.SectionPlan(), Executed: res.Completed}
			for _, a := range secRes.Plan.Alloc {
				secRes.Stats = append(secRes.Stats, fault.SectionStat{
					Section: a.Section, FP: a.FP, Label: a.Label, Pop: a.Pop, Trials: a.Trials,
				})
			}
		}
	case *sections:
		prep, perr := c.Prepare(ctx)
		if perr != nil {
			fatal(perr)
		}
		secRes, err = prep.RunSections(ctx, *journalPath)
		if secRes != nil {
			res = secRes.CampaignResult
		}
	case *shards > 1:
		res, err = shard.Run(ctx, c, *n, shard.Options{
			Shards:  *shards,
			Workers: *workers,
			Retries: fault.ExplicitRetries(*shardRetries),
			Dir:     *journalPath,
		})
	default:
		res, err = c.RunContext(ctx, *n)
	}
	if res == nil {
		fatal(err)
	}
	if ctx.Err() != nil {
		fmt.Fprintf(os.Stderr, "flipit: interrupted (%v): %d/%d trials completed\n", ctx.Err(), res.Completed, *n)
		if journal != nil || (*shards > 1 && *journalPath != "") {
			fmt.Fprintf(os.Stderr, "flipit: checkpoint saved; rerun with -journal %s -resume to continue\n", *journalPath)
		} else {
			fmt.Fprintln(os.Stderr, "flipit: no -journal was set, so this partial progress is lost on exit")
		}
	} else if err != nil {
		// Infrastructure failures: the campaign degraded but completed.
		fmt.Fprintf(os.Stderr, "flipit: degraded campaign: %s\n", res.ErrorSummary())
	}
	if res.Completed == 0 {
		fatal(errors.New("no trials completed"))
	}

	total := *n
	if *sections {
		total = len(res.Trials)
	}
	fmt.Printf("%s input %d (%s): %d/%d injections completed, golden run %d dyn instrs\n",
		*name, *input, spec.InputDesc, res.Completed, total, res.GoldenDyn)
	if secRes != nil {
		printSectioned(secRes)
	} else {
		for _, o := range []fault.Outcome{fault.OutcomeSymptom, fault.OutcomeDetected, fault.OutcomeMasked, fault.OutcomeSOC} {
			p := res.Proportion(o)
			fmt.Printf("  %-9s %6.2f%%  ± %.2f%% (95%%)\n", o, 100*p, 100*stats.MarginOfError95(p, res.Completed))
		}
	}
	if res.Deadlocks > 0 {
		fmt.Printf("  %d trial(s) deadlocked the job; first attribution:\n", res.Deadlocks)
		for _, tr := range res.Trials {
			if tr.Deadlock != "" {
				fmt.Printf("    trial site %d bit %d index %d: %s\n", tr.Site, tr.Bit, tr.Index, tr.Deadlock)
				break
			}
		}
	}

	if *funcs {
		siteFn := map[int]string{}
		for _, f := range m.Funcs() {
			for _, b := range f.Blocks() {
				for _, in := range b.Instrs() {
					siteFn[in.SiteID] = f.Name()
				}
			}
		}
		type agg struct{ soc, total int }
		byFn := map[string]*agg{}
		for _, tr := range res.Trials {
			if tr.Status != fault.TrialCompleted {
				continue
			}
			a := byFn[siteFn[tr.Site]]
			if a == nil {
				a = &agg{}
				byFn[siteFn[tr.Site]] = a
			}
			a.total++
			if tr.Outcome == fault.OutcomeSOC {
				a.soc++
			}
		}
		names := make([]string, 0, len(byFn))
		for fn := range byFn {
			names = append(names, fn)
		}
		sort.Strings(names)
		fmt.Println("per-function SOC rate:")
		for _, fn := range names {
			a := byFn[fn]
			fmt.Printf("  %-16s %3d/%3d trials SOC (%.1f%%)\n",
				"@"+fn, a.soc, a.total, 100*float64(a.soc)/float64(a.total))
		}
	}

	if ctx.Err() != nil {
		os.Exit(130)
	}
}

// printSectioned reports a sectioned campaign: the composed
// whole-program distribution (raw trial proportions would overweight
// cold sections), per-section dispositions, and the incremental-reuse
// accounting.
func printSectioned(secRes *fault.SectionResult) {
	d, err := compose.Whole(compose.FromSectionResult(secRes))
	if err != nil {
		fmt.Fprintf(os.Stderr, "flipit: composing sections: %v\n", err)
	} else {
		fmt.Printf("composed whole-program distribution (population-weighted over %d sections):\n", len(secRes.Plan.Alloc))
		for _, o := range []fault.Outcome{fault.OutcomeSymptom, fault.OutcomeDetected, fault.OutcomeMasked, fault.OutcomeSOC} {
			fmt.Printf("  %-9s %6.2f%%\n", o, 100*d[o])
		}
	}
	fmt.Printf("sectioned: %d trials executed, %d restored from journals; monolithic equivalent at equal coverage: %d trials\n",
		secRes.Executed, secRes.Restored, secRes.Plan.MonoTrials)
	fmt.Println("per-section allocation:")
	for _, st := range secRes.Stats {
		fmt.Printf("  %-32s pop %8d  trials %4d  restored %4d  fp %.12s\n",
			st.Label, st.Pop, st.Trials, st.Restored, st.FP)
	}
}

// submitRemote dispatches the campaign to a campaignd coordinator and
// polls it to completion. The coordinator's workers run the identical
// plan sequence, so the returned result is bit-identical to a local
// run with the same flags.
func submitRemote(ctx context.Context, url string, spec campaign.Spec, progress bool) (*fault.CampaignResult, error) {
	client := &campaign.Client{Base: url}
	sub, status, err := client.Submit(ctx, spec)
	if err != nil {
		return nil, err
	}
	switch status {
	case 200:
		fmt.Fprintf(os.Stderr, "flipit: coordinator resumed campaign %s (%d trials restored)\n", sub.ID, sub.Restored)
	case 202:
		fmt.Fprintf(os.Stderr, "flipit: coordinator recovered campaign %s (corrupt shard journals %v re-run)\n", sub.ID, sub.RecoveredShards)
	default:
		fmt.Fprintf(os.Stderr, "flipit: campaign %s submitted to %s\n", sub.ID, url)
	}
	var onProgress func(campaign.Progress)
	if progress {
		last := -1
		onProgress = func(p campaign.Progress) {
			if p.Done != last {
				last = p.Done
				fmt.Fprintf(os.Stderr, "flipit: %d/%d trials (%d failed, %d deadlocked)\n", p.Done, p.Trials, p.Failed, p.Deadlocked)
			}
		}
	}
	return client.WaitResult(ctx, sub.ID, time.Second, onProgress)
}

// reportModels runs the per-model resilience comparison: for every
// built-in error model, one campaign against the unprotected workload
// (how does the outcome distribution shift as faults get nastier?) and
// one against a fully duplicated (DMR) build of the same module (how
// much of the residual SOC does the stock detector still catch?).
// Recall = Detected / (Detected + SOC) on the protected build — the
// figure that collapses when a model defeats the protection's
// single-upset assumption.
func reportModels(ctx context.Context, m *ir.Module, spec *workloads.Spec, prog *interp.Program, trials int, seed int64, workers, maxRetries int, watchdog time.Duration) error {
	pm := ir.CloneModule(m)
	st, err := dup.FullDuplication(pm)
	if err != nil {
		return err
	}
	pprog, err := fault.Compile(pm)
	if err != nil {
		return err
	}
	cfg := spec.BaseConfig(1)
	cfg.Watchdog = watchdog

	run := func(p *interp.Program, model fault.ErrorModel) (*fault.CampaignResult, error) {
		c := &fault.Campaign{
			Prog:       p,
			Verify:     spec.Verify,
			Config:     cfg,
			Seed:       seed,
			Model:      model,
			Workers:    workers,
			MaxRetries: fault.ExplicitRetries(maxRetries),
		}
		res, err := c.RunContext(ctx, trials)
		if res == nil {
			return nil, err
		}
		if err != nil && ctx.Err() != nil {
			return nil, err
		}
		return res, nil
	}

	fmt.Printf("error-model report: %d trials per campaign, seed %d; DMR build duplicates %d of %d instructions\n",
		trials, seed, st.Duplicated, st.Candidates)
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "model\tsymptom%\tdetected%\tmasked%\tSOC%\t|\tDMR SOC%\tDMR recall%")
	for _, model := range fault.BuiltinModels() {
		base, err := run(prog, model)
		if err != nil {
			return err
		}
		prot, err := run(pprog, model)
		if err != nil {
			return err
		}
		det := prot.Counts[fault.OutcomeDetected]
		soc := prot.Counts[fault.OutcomeSOC]
		recall := "n/a"
		if det+soc > 0 {
			recall = fmt.Sprintf("%.1f", 100*float64(det)/float64(det+soc))
		}
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t|\t%.1f\t%s\n",
			model.Name(),
			100*base.Proportion(fault.OutcomeSymptom),
			100*base.Proportion(fault.OutcomeDetected),
			100*base.Proportion(fault.OutcomeMasked),
			100*base.Proportion(fault.OutcomeSOC),
			100*prot.Proportion(fault.OutcomeSOC),
			recall)
	}
	return w.Flush()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flipit:", err)
	os.Exit(1)
}
