// Command flipit runs a statistical fault-injection campaign (the
// paper's FlipIt role) against one of the five evaluation workloads and
// prints the outcome proportions of §5.5.
//
// Usage:
//
//	flipit [-workload NAME] [-input N] [-n TRIALS] [-seed S] [-funcs]
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"ipas/internal/fault"
	"ipas/internal/stats"
	"ipas/internal/workloads"
)

func main() {
	name := flag.String("workload", "FFT", "workload: CoMD, HPCCG, AMG, FFT, IS")
	input := flag.Int("input", 1, "input level 1..4 (Table 5)")
	n := flag.Int("n", 200, "number of injection trials")
	seed := flag.Int64("seed", 1, "campaign RNG seed")
	funcs := flag.Bool("funcs", false, "break outcomes down per function")
	flag.Parse()

	spec, err := workloads.Get(*name, *input)
	if err != nil {
		fatal(err)
	}
	m, err := spec.Compile()
	if err != nil {
		fatal(err)
	}
	prog, err := fault.Compile(m)
	if err != nil {
		fatal(err)
	}
	c := &fault.Campaign{Prog: prog, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: *seed}
	res, err := c.Run(*n)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s input %d (%s): %d injections, golden run %d dyn instrs\n",
		*name, *input, spec.InputDesc, *n, res.GoldenDyn)
	for _, o := range []fault.Outcome{fault.OutcomeSymptom, fault.OutcomeDetected, fault.OutcomeMasked, fault.OutcomeSOC} {
		p := res.Proportion(o)
		fmt.Printf("  %-9s %6.2f%%  ± %.2f%% (95%%)\n", o, 100*p, 100*stats.MarginOfError95(p, *n))
	}

	if *funcs {
		siteFn := map[int]string{}
		for _, f := range m.Funcs() {
			for _, b := range f.Blocks() {
				for _, in := range b.Instrs() {
					siteFn[in.SiteID] = f.Name()
				}
			}
		}
		type agg struct{ soc, total int }
		byFn := map[string]*agg{}
		for _, tr := range res.Trials {
			a := byFn[siteFn[tr.Site]]
			if a == nil {
				a = &agg{}
				byFn[siteFn[tr.Site]] = a
			}
			a.total++
			if tr.Outcome == fault.OutcomeSOC {
				a.soc++
			}
		}
		names := make([]string, 0, len(byFn))
		for fn := range byFn {
			names = append(names, fn)
		}
		sort.Strings(names)
		fmt.Println("per-function SOC rate:")
		for _, fn := range names {
			a := byFn[fn]
			fmt.Printf("  %-16s %3d/%3d trials SOC (%.1f%%)\n",
				"@"+fn, a.soc, a.total, 100*float64(a.soc)/float64(a.total))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "flipit:", err)
	os.Exit(1)
}
