// Command ipas runs the full IPAS workflow against one workload and
// prints every variant's coverage, slowdown and duplication stats, plus
// the ideal-point best configurations (the tool a user would run to
// decide how to protect their code).
//
// The workflow is resilient: Ctrl-C (or -deadline expiry) stops it, and
// with -journal DIR set, every campaign checkpoints its completed
// trials into per-stage JSONL journals under DIR; re-running with
// -journal DIR -resume continues from the checkpoint and produces a
// result identical to an uninterrupted run with the same parameters.
//
// With -shards K (K > 1) every campaign runs on the sharded engine
// (failure-isolated shards on a work-stealing scheduler, one journal
// per shard under DIR/<stage>.shards/); results stay bit-identical.
//
// With -remote URL the collection campaign — the workflow's dominant
// fault-injection cost, and the one stage expressible as a
// self-contained campaign spec — is dispatched to a campaignd
// coordinator and executed by its worker fleet; every other stage
// (training, protection, per-variant evaluation of protected modules,
// which do not round-trip through source text) runs locally. Results
// stay bit-identical to a fully local run.
//
// Usage:
//
//	ipas [-workload NAME] [-input N] [-quick|-paper] [-samples N]
//	     [-trials N] [-topn N] [-seed S]
//	     [-journal DIR [-resume]] [-deadline D] [-max-retries N]
//	     [-shards K] [-shard-retries N] [-watchdog D] [-remote URL]
//	     [-progress]
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"text/tabwriter"
	"time"

	"ipas"
	"ipas/internal/campaign"
	"ipas/internal/core"
	"ipas/internal/fault"
	"ipas/internal/ir"
)

func main() {
	name := flag.String("workload", "FFT", "workload: CoMD, HPCCG, AMG, FFT, IS, Jacobi, GradDesc")
	input := flag.Int("input", 1, "input level 1..4")
	paper := flag.Bool("paper", false, "paper-scale parameters (2500 samples, 500 grid points, 1024 trials)")
	samples := flag.Int("samples", 0, "override training sample count")
	trials := flag.Int("trials", 0, "override evaluation injections per variant")
	topn := flag.Int("topn", 0, "override top-N configuration count")
	seed := flag.Int64("seed", 1, "RNG seed")
	saveProtected := flag.String("save-protected", "", "write the best IPAS protected module (textual IR) to this file")
	saveClassifier := flag.String("save-classifier", "", "write the best IPAS classifier (JSON) to this file")
	withClassifier := flag.String("with-classifier", "", "skip training: protect using a previously saved classifier and write the module to -save-protected")
	journalDir := flag.String("journal", "", "checkpoint directory: one JSONL trial journal per campaign stage")
	resume := flag.Bool("resume", false, "continue an interrupted workflow from the -journal directory")
	deadline := flag.Duration("deadline", 0, "wall-clock budget for the workflow (0 = none)")
	maxRetries := flag.Int("max-retries", 2, "per-trial retries after infrastructure errors (0 = none)")
	shards := flag.Int("shards", 1, "failure-isolated shards per campaign; >1 selects the sharded engine (results are bit-identical)")
	shardRetries := flag.Int("shard-retries", 2, "quarantine retries before a sick shard's remaining trials are failed (0 = none)")
	watchdog := flag.Duration("watchdog", 0, "per-MPI-op wall-clock watchdog in every campaign (0 = interpreter default)")
	remote := flag.String("remote", "", "campaignd coordinator URL; dispatch the collection campaign there")
	trainWorkers := flag.Int("train-workers", 0, "concurrent grid-search workers for SVM training (0 = GOMAXPROCS; results are identical for any count)")
	progress := flag.Bool("progress", false, "report campaign and training progress on stderr")
	sections := flag.Bool("sections", false, "run each campaign sectioned: stratify trials over IR sections with per-section budgets and fingerprint-keyed journals")
	sectionCoverage := flag.Int("coverage", 1, "sectioned coverage factor: expected injections per exercised site per section")
	maxPerSection := flag.Int("max-per-section", 0, "cap on any one section's trial budget (0 = engine default)")
	incremental := flag.Bool("incremental", false, "incremental re-analysis: implies -sections and -resume, so a re-run against the same -journal re-injects only sections whose IR changed")
	errorModel := flag.String("error-model", "", "error model for every injection campaign: single-bit (default), burst-N, random-N, correlated, sticky")
	flag.Parse()
	if *incremental {
		*sections = true
		*resume = true
	}
	model, err := fault.ParseModel(*errorModel)
	if err != nil {
		fatal(err)
	}

	opts := ipas.QuickOptions()
	if *paper {
		opts = ipas.PaperOptions()
	}
	if *samples > 0 {
		opts.Samples = *samples
	}
	if *trials > 0 {
		opts.EvalTrials = *trials
	}
	if *topn > 0 {
		opts.TopN = *topn
	}
	opts.Seed = *seed

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *deadline)
		defer cancel()
	}

	controls := &core.CampaignControls{
		Model:           model,
		MaxRetries:      fault.ExplicitRetries(*maxRetries),
		TrainWorkers:    *trainWorkers,
		Shards:          *shards,
		ShardRetries:    fault.ExplicitRetries(*shardRetries),
		Watchdog:        *watchdog,
		Sections:        *sections,
		SectionCoverage: *sectionCoverage,
		MaxPerSection:   *maxPerSection,
	}
	if *remote != "" {
		// Only the collection campaign is spec-expressible (it runs the
		// unmodified workload); protected-variant evaluations cannot
		// round-trip through source text, so they degrade gracefully to
		// local execution.
		wl, in := *name, *input
		controls.Remote = &campaign.Client{Base: *remote}
		controls.RemoteSpec = func(stage string) *campaign.Spec {
			if stage != "collect" {
				return nil
			}
			return &campaign.Spec{Workload: wl, Input: in, Ranks: 1}
		}
	}
	if *progress {
		controls.Progress = func(stage string, done, total, failed, deadlocked int) {
			if done%50 == 0 || done == total {
				what := "trials"
				if strings.Contains(stage, "train") {
					what = "grid points"
				}
				extra := ""
				if deadlocked > 0 {
					extra = fmt.Sprintf(", %d deadlocked", deadlocked)
				}
				fmt.Fprintf(os.Stderr, "ipas: %s: %d/%d %s (%d failed%s)\n", stage, done, total, what, failed, extra)
			}
		}
	}
	if *journalDir != "" {
		cp, err := ipas.NewCheckpoint(*journalDir, *resume)
		if err != nil {
			fatal(err)
		}
		defer cp.Close()
		controls.Checkpoint = cp
		if *resume {
			fmt.Fprintf(os.Stderr, "ipas: resuming from checkpoint directory %s\n", *journalDir)
		}
	} else if *resume {
		fatal(errors.New("-resume requires -journal"))
	}
	opts.Controls = controls

	app, err := ipas.FromWorkload(*name, *input)
	if err != nil {
		fatal(err)
	}

	// Protect-only mode: reuse a saved classifier (steps 1-3 already
	// paid for) and emit the protected build.
	if *withClassifier != "" {
		cls, err := core.LoadClassifier(*withClassifier)
		if err != nil {
			fatal(err)
		}
		protected, st, err := core.ProtectModule(app.Module, cls, core.PolicyIPAS)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s input %d: duplicated %d of %d duplicable instructions (%.1f%%), %d checks\n",
			*name, *input, st.Duplicated, st.Candidates, st.DuplicatedPercent(), st.Checks)
		if *saveProtected == "" {
			fatal(fmt.Errorf("-with-classifier requires -save-protected"))
		}
		if err := os.WriteFile(*saveProtected, []byte(ir.Print(protected)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("protected module written to %s (run it with: irun %s)\n", *saveProtected, *saveProtected)
		return
	}

	fmt.Printf("IPAS workflow: %s input %d — %d training samples, %d grid points, top-%d, %d eval injections\n",
		*name, *input, opts.Samples, len(opts.Grid.Cs)*len(opts.Grid.Gammas), opts.TopN, opts.EvalTrials)

	t0 := time.Now()
	res, err := ipas.RunWorkflowContext(ctx, app, opts)
	if err != nil {
		if ctx.Err() != nil {
			fmt.Fprintf(os.Stderr, "ipas: interrupted after %v: %v\n", time.Since(t0).Round(10*time.Millisecond), err)
			if *journalDir != "" {
				fmt.Fprintf(os.Stderr, "ipas: checkpoint saved; rerun with -journal %s -resume to continue\n", *journalDir)
			} else {
				fmt.Fprintln(os.Stderr, "ipas: no -journal was set, so this partial progress is lost on exit")
			}
			os.Exit(130)
		}
		fatal(err)
	}
	if res.Data.Degraded != nil {
		fmt.Fprintf(os.Stderr, "ipas: degraded collection campaign: %s\n", res.Data.Campaign.ErrorSummary())
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "variant\tdup%\tsymptom%\tdetected%\tmasked%\tSOC%\treduction%\tslowdown")
	for _, v := range res.AllVariants() {
		cov := v.Coverage
		fmt.Fprintf(w, "%s\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.1f\t%.2f\n",
			v.Label(), v.Stats.DuplicatedPercent(),
			100*cov.Proportion(fault.OutcomeSymptom),
			100*cov.Proportion(fault.OutcomeDetected),
			100*cov.Proportion(fault.OutcomeMasked),
			100*cov.Proportion(fault.OutcomeSOC),
			v.SOCReductionPct, v.Slowdown)
	}
	w.Flush()

	for _, v := range res.AllVariants() {
		if v.Coverage.Failed > 0 {
			fmt.Fprintf(os.Stderr, "ipas: degraded %s evaluation: %s\n", v.Label(), v.Coverage.ErrorSummary())
		}
	}

	bi := res.Best(core.PolicyIPAS)
	bb := res.Best(core.PolicyBaseline)
	fmt.Printf("\nbest (ideal-point criterion):\n")
	fmt.Printf("  IPAS     %s: SOC reduction %.1f%% at %.2fx slowdown\n", bi.Label(), bi.SOCReductionPct, bi.Slowdown)
	fmt.Printf("  Baseline %s: SOC reduction %.1f%% at %.2fx slowdown\n", bb.Label(), bb.SOCReductionPct, bb.Slowdown)
	fmt.Printf("\ntraining %v (IPAS) + %v (baseline); classification+duplication %v\n",
		res.TrainIPASTime.Round(msRound), res.TrainBaselineTime.Round(msRound), res.ProtectTime.Round(msRound))

	if *saveClassifier != "" {
		if err := core.SaveClassifier(*saveClassifier, bi.Classifier); err != nil {
			fatal(err)
		}
		fmt.Printf("best classifier written to %s\n", *saveClassifier)
	}
	if *saveProtected != "" {
		if err := os.WriteFile(*saveProtected, []byte(ir.Print(bi.Module)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("best protected module written to %s\n", *saveProtected)
	}
}

const msRound = 1e7 // 10ms

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "ipas:", err)
	os.Exit(1)
}
