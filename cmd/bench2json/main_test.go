package main

import (
	"io"
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: ipas
cpu: Intel(R) Xeon(R) CPU
BenchmarkInterpreter/FFT-8         	      33	  70727464 ns/op	  88930441 instrs/s
BenchmarkInterpreter/CoMD-8        	       9	 114893342 ns/op	 139916216 instrs/s	     128 B/op	       2 allocs/op
BenchmarkCampaignThroughput/FFT-8  	       2	 903210042 ns/op	        33.21 trials/s
--- some unrelated line ---
PASS
ok  	ipas	12.345s
`
	rep, err := parse(strings.NewReader(input), io.Discard)
	if err != nil {
		t.Fatal(err)
	}
	if rep.GOOS != "linux" || rep.GOARCH != "amd64" || rep.Package != "ipas" {
		t.Fatalf("bad header: %+v", rep)
	}
	if len(rep.Benchmarks) != 3 {
		t.Fatalf("got %d benchmarks, want 3", len(rep.Benchmarks))
	}
	b0 := rep.Benchmarks[0]
	if b0.Name != "BenchmarkInterpreter/FFT-8" || b0.Iterations != 33 || b0.NsPerOp != 70727464 {
		t.Fatalf("bad first benchmark: %+v", b0)
	}
	if b0.Metrics["instrs/s"] != 88930441 {
		t.Fatalf("bad metric: %+v", b0.Metrics)
	}
	b1 := rep.Benchmarks[1]
	keys := sortKeys(b1.Metrics)
	if len(keys) != 3 || keys[0] != "B/op" || keys[1] != "allocs/op" || keys[2] != "instrs/s" {
		t.Fatalf("bad metric keys: %v", keys)
	}
	if rep.Benchmarks[2].Metrics["trials/s"] != 33.21 {
		t.Fatalf("bad trials/s: %+v", rep.Benchmarks[2].Metrics)
	}
}

func TestParseLineRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"BenchmarkX",
		"BenchmarkX notanumber 1 ns/op",
		"BenchmarkX 10 notafloat ns/op",
	} {
		if _, ok := parseLine(line); ok {
			t.Fatalf("accepted %q", line)
		}
	}
}
