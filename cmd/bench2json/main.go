// Command bench2json converts `go test -bench` output into a
// machine-readable JSON document, so benchmark runs can be checked in
// and diffed across commits (see `make bench`, which writes
// BENCH_interp.json).
//
// Usage:
//
//	go test -bench=. . | go run ./cmd/bench2json -o BENCH_interp.json
//
// Input is read from stdin (or a file argument) and passed through to
// stdout unchanged, so it can sit in a pipe after `tee`. Non-benchmark
// lines are ignored except for the goos/goarch/cpu header, which is
// captured as environment metadata.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one result line: name, iteration count, ns/op, and any
// additional metrics (B/op, allocs/op, and custom b.ReportMetric units
// such as instrs/s or trials/s).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the checked-in document: environment header plus results
// in input order.
type Report struct {
	GOOS       string      `json:"goos,omitempty"`
	GOARCH     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	out := flag.String("o", "", "write JSON to this file (default stdout only)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	passthrough := io.Writer(os.Stdout)
	if flag.NArg() > 0 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
		passthrough = io.Discard
	}

	rep, err := parse(in, passthrough)
	if err != nil {
		fatal(err)
	}
	if len(rep.Benchmarks) == 0 {
		fatal(fmt.Errorf("no benchmark result lines in input"))
	}
	js, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	js = append(js, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, js, 0o644); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "bench2json: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
	} else {
		os.Stdout.Write(js)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "bench2json:", err)
	os.Exit(1)
}

// parse scans go-test benchmark output, echoing every line to echo.
func parse(in io.Reader, echo io.Writer) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		fmt.Fprintln(echo, line)
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.GOOS = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.GOARCH = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Package = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "Benchmark"):
			if b, ok := parseLine(line); ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseLine parses one result line of the form
//
//	BenchmarkName-8   123   4567 ns/op   8.9e+07 instrs/s   16 B/op
//
// The name's trailing -GOMAXPROCS suffix is kept (it is part of the
// benchmark identity in go tooling). Metric values and units alternate
// after the iteration count.
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters}
	rest := fields[2:]
	for i := 0; i+1 < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		unit := rest[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = map[string]float64{}
		}
		b.Metrics[unit] = v
	}
	return b, b.NsPerOp != 0 || len(b.Metrics) > 0
}

// sortKeys is used by tests to get deterministic metric ordering.
func sortKeys(m map[string]float64) []string {
	ks := make([]string, 0, len(m))
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}
