// Command ipas-worker executes fault-injection shards leased from a
// campaignd coordinator. It rebuilds each campaign from the spec in
// the lease grant, refuses leases whose campaign fingerprint disagrees
// with its own build, and streams every finished trial back as a
// durable-acked journal segment. Run as many workers as you like, on
// as many machines as reach the coordinator; killing one mid-shard
// only costs the unacked tail of that shard.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"ipas/internal/campaign"
)

func main() {
	server := flag.String("server", "http://127.0.0.1:7077", "coordinator base URL")
	name := flag.String("name", "", "worker name shown in progress reports (default host-pid)")
	poll := flag.Duration("poll", 200*time.Millisecond, "idle re-poll interval when no shard is available")
	flag.Parse()

	if *name == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		*name = fmt.Sprintf("%s-%d", host, os.Getpid())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	w := &campaign.Worker{Server: *server, Name: *name, Poll: *poll}
	fmt.Fprintf(os.Stderr, "ipas-worker %s: polling %s\n", *name, *server)
	err := w.Run(ctx)
	if err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintf(os.Stderr, "ipas-worker %s: %v\n", *name, err)
		os.Exit(1)
	}
}
