package ipas_test

import (
	"fmt"

	"ipas"
)

// ExampleFromSci shows the sci front end and the deterministic
// executor: compile a program, run it fault-free, and read its output
// buffer.
func ExampleFromSci() {
	src := `
func main() {
	var s float = 0.0;
	for (var i int = 1; i <= 4; i = i + 1) {
		s = s + sqrt(float(i * i));
	}
	out_f64(0, s);
}
`
	verify := func(golden, run *ipas.RunResult) bool {
		return len(run.OutputF) == 1 && run.OutputF[0] == golden.OutputF[0]
	}
	app, err := ipas.FromSci(src, verify, ipas.RunConfig{})
	if err != nil {
		panic(err)
	}
	res, err := ipas.Execute(app, app.Config)
	if err != nil {
		panic(err)
	}
	fmt.Println(res.OutputF[0])
	// Output: 10
}

// ExampleInjectFaults runs a small FlipIt-style campaign against the
// FFT workload and classifies every outcome into the paper's four
// categories.
func ExampleInjectFaults() {
	app, err := ipas.FromWorkload("FFT", 1)
	if err != nil {
		panic(err)
	}
	res, err := ipas.InjectFaults(app, 25, 7)
	if err != nil {
		panic(err)
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	fmt.Println(total, res.Counts[ipas.OutcomeDetected])
	// Output: 25 0
}
