// Benchmarks regenerating every table and figure of the paper's
// evaluation (§6), plus ablation benches for the design decisions
// DESIGN.md calls out. Each BenchmarkTableN/BenchmarkFigN regenerates
// the corresponding artifact at smoke scale (use cmd/experiments for
// the quick-scale default or its -paper flag for full size) and
// reports headline numbers as custom metrics.
package ipas

import (
	"context"
	"runtime"
	"sync"
	"testing"
	"time"

	"ipas/internal/baseline"
	"ipas/internal/core"
	"ipas/internal/dup"
	"ipas/internal/experiments"
	"ipas/internal/fault"
	"ipas/internal/fault/shard"
	"ipas/internal/features"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/lang"
	"ipas/internal/svm"
	"ipas/internal/workloads"
)

// benchSuite is shared so the expensive workflow run is paid once and
// every per-figure benchmark reuses the cached result, mirroring how
// cmd/experiments works.
var (
	benchSuiteOnce sync.Once
	benchSuite     *experiments.Suite
)

func suite(b *testing.B) *experiments.Suite {
	b.Helper()
	benchSuiteOnce.Do(func() {
		benchSuite = experiments.NewSuite(experiments.Smoke("FFT", "IS"))
	})
	return benchSuite
}

func runExperiment(b *testing.B, id string) *experiments.Table {
	b.Helper()
	s := suite(b)
	var t *experiments.Table
	var err error
	for i := 0; i < b.N; i++ {
		t, err = s.Run(id)
		if err != nil {
			b.Fatal(err)
		}
	}
	return t
}

// BenchmarkTable3StaticCounts regenerates Table 3 (code sizes).
func BenchmarkTable3StaticCounts(b *testing.B) {
	t := runExperiment(b, "table3")
	if len(t.Rows) == 0 {
		b.Fatal("empty table")
	}
}

// BenchmarkTable5Inputs regenerates Table 5 (application inputs).
func BenchmarkTable5Inputs(b *testing.B) {
	runExperiment(b, "table5")
}

// BenchmarkFig5Coverage regenerates Figure 5 (outcome proportions per
// protection variant).
func BenchmarkFig5Coverage(b *testing.B) {
	t := runExperiment(b, "fig5")
	if len(t.Rows) == 0 {
		b.Fatal("empty figure")
	}
}

// BenchmarkFig6ReductionVsSlowdown regenerates Figure 6 and reports the
// best IPAS point as metrics.
func BenchmarkFig6ReductionVsSlowdown(b *testing.B) {
	runExperiment(b, "fig6")
	r, err := suite(b).Result("FFT")
	if err != nil {
		b.Fatal(err)
	}
	best := r.Best(core.PolicyIPAS)
	b.ReportMetric(best.SOCReductionPct, "SOCreduction%")
	b.ReportMetric(best.Slowdown, "slowdown")
}

// BenchmarkFig7DuplicatedInstructions regenerates Figure 7.
func BenchmarkFig7DuplicatedInstructions(b *testing.B) {
	runExperiment(b, "fig7")
}

// BenchmarkFig8Scalability regenerates Figure 8 (slowdown vs ranks).
func BenchmarkFig8Scalability(b *testing.B) {
	runExperiment(b, "fig8")
}

// BenchmarkFig9InputVariation regenerates Figure 9 (train on input 1,
// evaluate on larger inputs).
func BenchmarkFig9InputVariation(b *testing.B) {
	runExperiment(b, "fig9")
}

// BenchmarkTable4BestConfigs regenerates Table 4 (ideal-point best
// configurations).
func BenchmarkTable4BestConfigs(b *testing.B) {
	runExperiment(b, "table4")
}

// BenchmarkTable6TrainingTime regenerates Table 6 (training and
// duplication time).
func BenchmarkTable6TrainingTime(b *testing.B) {
	runExperiment(b, "table6")
}

// --- Component benchmarks -------------------------------------------------

// BenchmarkInterpreter measures executor throughput on each workload's
// training input (the denominator of every campaign's cost).
func BenchmarkInterpreter(b *testing.B) {
	for _, name := range workloads.Names {
		b.Run(name, func(b *testing.B) {
			spec := workloads.MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				b.Fatal(err)
			}
			p, err := interp.Compile(m, nil)
			if err != nil {
				b.Fatal(err)
			}
			var dyn int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := interp.Run(p, spec.BaseConfig(1))
				if res.Trap != interp.TrapNone {
					b.Fatal(res.Trap)
				}
				dyn = res.TotalDyn
			}
			b.ReportMetric(float64(dyn)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkInterpreterInstrumented measures the fully instrumented
// execution loop (site counting + instruction budget armed — the shape
// of a campaign trial) so the specialization gap between the fast and
// full paths stays visible in the perf record.
func BenchmarkInterpreterInstrumented(b *testing.B) {
	for _, name := range workloads.Names {
		b.Run(name, func(b *testing.B) {
			spec := workloads.MustGet(name, 1)
			m, err := spec.Compile()
			if err != nil {
				b.Fatal(err)
			}
			p, err := interp.Compile(m, fault.Injectable)
			if err != nil {
				b.Fatal(err)
			}
			cfg := spec.BaseConfig(1)
			cfg.CountSites = true
			cfg.MaxInstrs = 1 << 40
			var dyn int64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := interp.Run(p, cfg)
				if res.Trap != interp.TrapNone {
					b.Fatal(res.Trap)
				}
				dyn = res.TotalDyn
			}
			b.ReportMetric(float64(dyn)*float64(b.N)/b.Elapsed().Seconds(), "instrs/s")
		})
	}
}

// BenchmarkCampaignThroughput measures end-to-end injection-campaign
// speed (golden run + armed trials + verification + classification) —
// the unit of cost behind every figure's sample count.
func BenchmarkCampaignThroughput(b *testing.B) {
	const trials = 30
	for _, name := range []string{"FFT", "IS"} {
		b.Run(name, func(b *testing.B) {
			app := benchApp(b, name)
			prog, err := fault.Compile(app.Module)
			if err != nil {
				b.Fatal(err)
			}
			c := &fault.Campaign{Prog: prog, Verify: app.Verify, Config: app.Config, Seed: 9}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(trials); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
		})
	}
}

// BenchmarkCampaignSetup measures Campaign.Prepare cold (golden run
// executed, caching disabled) against warm (golden served from a
// pre-warmed cache; the iteration still pays compiling-adjacent work —
// fingerprinting a freshly compiled program — so the number reflects a
// new campaign process adopting a shared golden run). The warm number
// is the enforced cache win: breaking the cache turns warm into cold,
// an order-of-magnitude jump the benchdiff gate rejects.
func BenchmarkCampaignSetup(b *testing.B) {
	spec := workloads.MustGet("AMG", 1)
	newProg := func() *interp.Program {
		m, err := spec.Compile()
		if err != nil {
			b.Fatal(err)
		}
		p, err := fault.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		return p
	}
	campaign := func(p *interp.Program, gc *fault.GoldenCache) *fault.Campaign {
		return &fault.Campaign{
			Prog: p, Verify: spec.Verify, Config: spec.BaseConfig(1), Seed: 7,
			GoldenCache: gc, NoGoldenCache: gc == nil,
		}
	}
	b.Run("path=cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := newProg()
			b.StartTimer()
			if _, err := campaign(p, nil).Prepare(context.Background()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("path=warm", func(b *testing.B) {
		gc := fault.NewGoldenCache(8)
		if _, err := campaign(newProg(), gc).Prepare(context.Background()); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			p := newProg()
			b.StartTimer()
			prep, err := campaign(p, gc).Prepare(context.Background())
			if err != nil {
				b.Fatal(err)
			}
			if !prep.GoldenCached {
				b.Fatal("warm Prepare missed the cache")
			}
		}
	})
}

// BenchmarkShardedCampaign measures the sharded campaign engine
// (internal/fault/shard) against the single-loop baseline above:
// "1shard" is the engine's overhead floor (scheduler + partition, no
// parallelism win), "sharded" runs one shard per scheduler worker at
// GOMAXPROCS. Journaling is off in both, so the numbers isolate
// scheduling cost from I/O.
func BenchmarkShardedCampaign(b *testing.B) {
	const trials = 30
	for _, name := range []string{"FFT", "IS"} {
		for _, cfg := range []struct {
			label  string
			shards int
		}{
			{"1shard", 1},
			{"sharded", runtime.GOMAXPROCS(0)},
		} {
			b.Run(name+"-"+cfg.label, func(b *testing.B) {
				app := benchApp(b, name)
				prog, err := fault.Compile(app.Module)
				if err != nil {
					b.Fatal(err)
				}
				c := &fault.Campaign{Prog: prog, Verify: app.Verify, Config: app.Config, Seed: 9}
				opts := shard.Options{Shards: cfg.shards}
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := shard.Run(context.Background(), c, trials, opts); err != nil {
						b.Fatal(err)
					}
				}
				b.ReportMetric(float64(trials)*float64(b.N)/b.Elapsed().Seconds(), "trials/s")
			})
		}
	}
}

// BenchmarkDeadlockDetection measures the latency of structural
// deadlock detection: a 2-rank recv-recv deadlock run to completion.
// The watchdog is set to an hour, so the measured time is pure
// supervisor latency — before structural detection this scenario cost
// a full wall-clock timeout (formerly 10 s) per occurrence.
func BenchmarkDeadlockDetection(b *testing.B) {
	m, err := lang.Compile(`
func main() {
	var rank int = mpi_rank();
	var peer int = 1 - rank;
	var v int = mpi_recv_i64(peer, 1);
	mpi_send_i64(peer, 1, v);
}
`)
	if err != nil {
		b.Fatal(err)
	}
	p, err := interp.Compile(m, nil)
	if err != nil {
		b.Fatal(err)
	}
	cfg := interp.Config{Ranks: 2, Watchdog: time.Hour}
	// Warm the interpreter's memory pool: a single-iteration smoke run
	// should measure detection latency, not the one-time allocation of
	// two 64 MiB rank address spaces.
	if res := interp.Run(p, cfg); res.Trap != interp.TrapDeadlock {
		b.Fatalf("warmup trap = %v, want structural deadlock", res.Trap)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := interp.Run(p, cfg)
		if res.Trap != interp.TrapDeadlock || res.Deadlock == nil {
			b.Fatalf("trap = %v, want structural deadlock", res.Trap)
		}
	}
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1e6, "µs/detection")
}

// BenchmarkSciCompile measures front-end + mem2reg speed.
func BenchmarkSciCompile(b *testing.B) {
	spec := workloads.MustGet("CoMD", 1)
	for i := 0; i < b.N; i++ {
		if _, err := spec.Compile(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDuplicationPass measures the protection pass itself
// (classification excluded) at full-duplication weight.
func BenchmarkDuplicationPass(b *testing.B) {
	spec := workloads.MustGet("CoMD", 1)
	m, err := spec.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		clone := ir.CloneModule(m)
		if _, err := dup.FullDuplication(clone); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeatureExtraction measures Table 1 feature extraction over a
// whole module (instruction + BB + function + slice categories).
func BenchmarkFeatureExtraction(b *testing.B) {
	spec := workloads.MustGet("HPCCG", 1)
	m, err := spec.Compile()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		feats := core.SiteFeaturesOf(m)
		if len(feats) == 0 {
			b.Fatal("no features")
		}
	}
}

// BenchmarkSVMGridSearch measures the Step-3 grid search on a synthetic
// imbalanced problem shaped like the paper's data (31 dims, ~8%
// positive class).
func BenchmarkSVMGridSearch(b *testing.B) {
	prob := syntheticProblem(300, 31, 8)
	grid := svm.LogGrid(1, 1e5, 4, 1e-5, 1, 3)
	grid.WeightByClassFreq = true
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfgs, err := svm.GridSearch(prob, grid)
		if err != nil {
			b.Fatal(err)
		}
		if len(cfgs) == 0 {
			b.Fatal("no configs")
		}
	}
}

// --- Ablation benches (design decisions in DESIGN.md §5) -------------------

// BenchmarkAblationClassWeights compares cross-validated F-score with
// and without inverse-frequency class weights on imbalanced data (the
// paper's §4.3.1 motivation for the SVM choice).
func BenchmarkAblationClassWeights(b *testing.B) {
	prob := syntheticProblem(400, 31, 6)
	dist := svm.SqDistMatrix(prob.X)
	params := svm.Params{C: 10, Gamma: 0.05}
	var plain, weighted svm.CVResult
	var err error
	for i := 0; i < b.N; i++ {
		plain, err = svm.CrossValidate(prob, params, dist, 5)
		if err != nil {
			b.Fatal(err)
		}
		wp := params
		wp.WeightPos, wp.WeightNeg = 8, 0.57
		weighted, err = svm.CrossValidate(prob, wp, dist, 5)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(plain.FScore, "fscore-plain")
	b.ReportMetric(weighted.FScore, "fscore-weighted")
}

// BenchmarkAblationSliceFeatures compares classifier quality with and
// without the forward-slice features (25-31), quantifying what Weiser
// slicing buys the model.
func BenchmarkAblationSliceFeatures(b *testing.B) {
	app := benchApp(b, "FFT")
	data, err := core.Collect(app, 200, 77)
	if err != nil {
		b.Fatal(err)
	}
	labels := data.Labels(core.PolicyIPAS)
	eval := func(X [][]float64) float64 {
		sc := svm.FitScaler(X)
		prob := &svm.Problem{X: sc.ApplyAll(X), Y: labels}
		dist := svm.SqDistMatrix(prob.X)
		cv, err := svm.CrossValidate(prob, svm.Params{C: 100, Gamma: 0.1, WeightPos: 5}, dist, 5)
		if err != nil {
			b.Fatal(err)
		}
		return cv.FScore
	}
	var full, noSlice float64
	for i := 0; i < b.N; i++ {
		full = eval(data.X)
		trimmed := make([][]float64, len(data.X))
		for j, x := range data.X {
			t := append([]float64(nil), x...)
			for d := 24; d < 31; d++ {
				t[d] = 0
			}
			trimmed[j] = t
		}
		noSlice = eval(trimmed)
	}
	b.ReportMetric(full, "fscore-full")
	b.ReportMetric(noSlice, "fscore-noslice")
}

// BenchmarkAblationInterproceduralSlices compares classifier quality
// when features 25-31 come from full Weiser (interprocedural) slices
// instead of the default intraprocedural ones.
func BenchmarkAblationInterproceduralSlices(b *testing.B) {
	app := benchApp(b, "HPCCG")
	data, err := core.Collect(app, 200, 88)
	if err != nil {
		b.Fatal(err)
	}
	labels := data.Labels(core.PolicyIPAS)
	evalWith := func(feats [][]float64) float64 {
		X := make([][]float64, len(data.Campaign.Trials))
		for i, tr := range data.Campaign.Trials {
			X[i] = feats[tr.Site]
		}
		sc := svm.FitScaler(X)
		prob := &svm.Problem{X: sc.ApplyAll(X), Y: labels}
		dist := svm.SqDistMatrix(prob.X)
		cv, err := svm.CrossValidate(prob, svm.Params{C: 100, Gamma: 0.1, WeightPos: 5}, dist, 5)
		if err != nil {
			b.Fatal(err)
		}
		return cv.FScore
	}
	var intra, inter float64
	for i := 0; i < b.N; i++ {
		intra = evalWith(features.NewExtractor(app.Module).VectorBySite())
		inter = evalWith(features.NewExtractorOpts(app.Module,
			features.Options{InterproceduralSlices: true}).VectorBySite())
	}
	b.ReportMetric(intra, "fscore-intra")
	b.ReportMetric(inter, "fscore-interproc")
}

// BenchmarkAblationHangFactor measures campaign cost sensitivity to the
// hang-detection budget (DESIGN.md: budget = hangFactor x golden).
func BenchmarkAblationHangFactor(b *testing.B) {
	app := benchApp(b, "IS")
	prog, err := fault.Compile(app.Module)
	if err != nil {
		b.Fatal(err)
	}
	for _, factor := range []int64{2, 10, 50} {
		b.Run(factorName(factor), func(b *testing.B) {
			c := &fault.Campaign{
				Prog: prog, Verify: app.Verify, Config: app.Config,
				HangFactor: factor, Seed: 3,
			}
			for i := 0; i < b.N; i++ {
				if _, err := c.Run(40); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationECCAssumption quantifies the paper's §3 ECC
// assumption: with load results injectable (no ECC), more faults reach
// unduplicable instructions, so full duplication's residual SOC grows.
func BenchmarkAblationECCAssumption(b *testing.B) {
	app := benchApp(b, "FFT")
	prot := ir.CloneModule(app.Module)
	if _, err := dup.FullDuplication(prot); err != nil {
		b.Fatal(err)
	}
	run := func(model func(*ir.Instr) bool) float64 {
		prog, err := fault.CompileWithModel(prot, model)
		if err != nil {
			b.Fatal(err)
		}
		c := &fault.Campaign{Prog: prog, Verify: app.Verify, Config: app.Config, Seed: 13}
		res, err := c.Run(80)
		if err != nil {
			b.Fatal(err)
		}
		return 100 * res.Proportion(fault.OutcomeSOC)
	}
	var withECC, withoutECC float64
	for i := 0; i < b.N; i++ {
		withECC = run(fault.Injectable)
		withoutECC = run(fault.InjectableIncludingLoads)
	}
	b.ReportMetric(withECC, "SOC%-ecc")
	b.ReportMetric(withoutECC, "SOC%-noecc")
}

// BenchmarkAblationTrainingSetSize addresses the paper's future-work
// note (§6.3): more training samples should stabilize IPAS configs.
// Reports the best cross-validated F-score at two training sizes.
func BenchmarkAblationTrainingSetSize(b *testing.B) {
	app := benchApp(b, "IS")
	grid := svm.LogGrid(1, 1e4, 3, 1e-4, 1, 3)
	grid.WeightByClassFreq = true
	eval := func(samples int) float64 {
		data, err := core.Collect(app, samples, 21)
		if err != nil {
			b.Fatal(err)
		}
		sc := svm.FitScaler(data.X)
		prob := &svm.Problem{X: sc.ApplyAll(data.X), Y: data.Labels(core.PolicyIPAS)}
		cfgs, err := svm.GridSearch(prob, grid)
		if err != nil {
			b.Fatal(err)
		}
		return cfgs[0].CV.FScore
	}
	var small, large float64
	for i := 0; i < b.N; i++ {
		small = eval(120)
		large = eval(360)
	}
	b.ReportMetric(small, "fscore-120")
	b.ReportMetric(large, "fscore-360")
}

// BenchmarkAblationCheckPlacement compares the paper's path-end check
// placement (§4.4) against eager per-instruction checking: same
// coverage target, different overhead.
func BenchmarkAblationCheckPlacement(b *testing.B) {
	app := benchApp(b, "FFT") // long butterfly chains separate the two placements
	base, err := interp.Compile(app.Module, nil)
	if err != nil {
		b.Fatal(err)
	}
	baseDyn := interp.Run(base, app.Config).TotalDyn

	measure := func(opts dup.Options) (slowdown float64, checks int) {
		m := ir.CloneModule(app.Module)
		st, err := dup.ProtectWithOptions(m, func(*ir.Instr) bool { return true }, opts)
		if err != nil {
			b.Fatal(err)
		}
		prog, err := interp.Compile(m, nil)
		if err != nil {
			b.Fatal(err)
		}
		res := interp.Run(prog, app.Config)
		if res.Trap != interp.TrapNone {
			b.Fatalf("trap %v", res.Trap)
		}
		return float64(res.TotalDyn) / float64(baseDyn), st.Checks
	}
	var pathEnd, eager float64
	var pathChecks, eagerChecks int
	for i := 0; i < b.N; i++ {
		pathEnd, pathChecks = measure(dup.Options{})
		eager, eagerChecks = measure(dup.Options{EagerChecks: true})
	}
	if eagerChecks <= pathChecks {
		b.Fatalf("eager placed %d checks vs %d at path ends", eagerChecks, pathChecks)
	}
	b.ReportMetric(pathEnd, "slow-pathend")
	b.ReportMetric(eager, "slow-eager")
}

// BenchmarkDetectionLatency quantifies the paper's §2.1 argument for
// duplication over pure output verification: duplication detects
// corruption within a few dynamic instructions of its occurrence
// (enabling recent-checkpoint recovery), while verification-only
// schemes discover it at the end of the run. Reports mean
// injection-to-detection distance under full duplication vs the mean
// injection-to-completion distance of SOC runs without protection.
func BenchmarkDetectionLatency(b *testing.B) {
	app := benchApp(b, "FFT")
	campaign := func(m *ir.Module, seed int64) *fault.CampaignResult {
		prog, err := fault.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		res, err := (&fault.Campaign{Prog: prog, Verify: app.Verify, Config: app.Config, Seed: seed}).Run(100)
		if err != nil {
			b.Fatal(err)
		}
		return res
	}
	var detectLat, socRunout float64
	for i := 0; i < b.N; i++ {
		prot := ir.CloneModule(app.Module)
		if _, err := dup.FullDuplication(prot); err != nil {
			b.Fatal(err)
		}
		detectLat = campaign(prot, 61).MeanLatency(fault.OutcomeDetected)
		socRunout = campaign(app.Module, 62).MeanLatency(fault.OutcomeSOC)
	}
	b.ReportMetric(detectLat, "instrs-to-detect")
	b.ReportMetric(socRunout, "instrs-to-output")
}

// BenchmarkAblationStaticShoestring compares the original Shoestring's
// static data-flow policy (internal/baseline) against IPAS's learned
// selection on the same workload — the comparison the paper could not
// run because the original is closed-source. Reports residual SOC
// percentages and slowdowns of both.
func BenchmarkAblationStaticShoestring(b *testing.B) {
	app := benchApp(b, "FFT")
	campaign := func(m *ir.Module, seed int64) (socPct, slowdown float64) {
		prog, err := fault.Compile(m)
		if err != nil {
			b.Fatal(err)
		}
		c := &fault.Campaign{Prog: prog, Verify: app.Verify, Config: app.Config, Seed: seed}
		res, err := c.Run(80)
		if err != nil {
			b.Fatal(err)
		}
		return 100 * res.Proportion(fault.OutcomeSOC), float64(res.GoldenDyn)
	}
	var staticSOC, learnedSOC, staticSlow, learnedSlow float64
	for i := 0; i < b.N; i++ {
		_, baseDyn := campaign(app.Module, 51)

		st := ir.CloneModule(app.Module)
		if _, err := dup.Protect(st, baseline.Policy(st, baseline.Config{})); err != nil {
			b.Fatal(err)
		}
		soc, dyn := campaign(st, 52)
		staticSOC, staticSlow = soc, dyn/baseDyn

		data, err := core.Collect(app, 200, 53)
		if err != nil {
			b.Fatal(err)
		}
		clss, err := core.Train(data, data.Labels(core.PolicyIPAS), svm.LogGrid(1, 1e4, 3, 1e-4, 1, 3), 1)
		if err != nil {
			b.Fatal(err)
		}
		prot, _, err := core.ProtectModule(app.Module, clss[0], core.PolicyIPAS)
		if err != nil {
			b.Fatal(err)
		}
		soc, dyn = campaign(prot, 54)
		learnedSOC, learnedSlow = soc, dyn/baseDyn
	}
	b.ReportMetric(staticSOC, "SOC%-static")
	b.ReportMetric(learnedSOC, "SOC%-ipas")
	b.ReportMetric(staticSlow, "slow-static")
	b.ReportMetric(learnedSlow, "slow-ipas")
}

// --- helpers ---------------------------------------------------------------

func benchApp(b *testing.B, name string) *core.App {
	b.Helper()
	spec := workloads.MustGet(name, 1)
	m, err := spec.Compile()
	if err != nil {
		b.Fatal(err)
	}
	return &core.App{Module: m, Verify: spec.Verify, Config: spec.BaseConfig(1)}
}

// syntheticProblem builds an imbalanced two-cluster dataset with dim
// dimensions and one positive sample per posEvery samples.
func syntheticProblem(n, dim, posEvery int) *svm.Problem {
	p := &svm.Problem{}
	state := uint64(12345)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	for i := 0; i < n; i++ {
		x := make([]float64, dim)
		y := -1
		shift := 0.0
		if i%posEvery == 0 {
			y = 1
			shift = 1.2
		}
		for d := range x {
			x[d] = next() + shift
		}
		p.X = append(p.X, x)
		p.Y = append(p.Y, y)
	}
	return p
}

func factorName(f int64) string {
	switch f {
	case 2:
		return "factor2"
	case 10:
		return "factor10"
	default:
		return "factor50"
	}
}
