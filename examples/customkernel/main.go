// Customkernel: protect your own code. This example writes a 1-D heat
// equation solver in the sci language, defines its verification routine
// (the paper's Step 1), and asks IPAS for the best protected build —
// the workflow a scientist would follow for a kernel the paper never
// evaluated.
package main

import (
	"fmt"
	"log"
	"math"

	"ipas"
	"ipas/internal/svm"
)

// heatSource is an explicit finite-difference solver for u_t = u_xx on
// [0,1] with Dirichlet boundaries, integrated to t = 0.05. The exact
// solution of the sine initial condition decays as exp(-pi^2 t), which
// the verification routine checks.
const heatSource = `
func main() {
	var n int = 64;             // interior grid points
	var steps int = 470;        // keeps dt/h^2 below the 0.5 CFL limit
	var u *float = malloc_f64(n + 2);
	var un *float = malloc_f64(n + 2);
	var pi float = 3.141592653589793;
	var h float = 1.0 / float(n + 1);
	var dt float = 0.05 / float(steps);
	var lam float = dt / (h * h);

	for (var i int = 0; i <= n + 1; i = i + 1) {
		var x float = float(i) * h;
		u[i] = sin(pi * x);
	}
	for (var s int = 0; s < steps; s = s + 1) {
		for (var i int = 1; i <= n; i = i + 1) {
			un[i] = u[i] + lam * (u[i-1] - 2.0 * u[i] + u[i+1]);
		}
		for (var i int = 1; i <= n; i = i + 1) {
			u[i] = un[i];
		}
	}
	// Emit the solution profile for verification.
	for (var i int = 1; i <= n; i = i + 1) {
		out_f64(i - 1, u[i]);
	}
}
`

func main() {
	// Step 1: the verification routine. The analytic solution at
	// t = 0.05 is exp(-pi^2 t) sin(pi x); accept the run if the
	// max-norm error stays within the discretization error budget.
	n := 64
	verify := func(golden, faulty *ipas.RunResult) bool {
		if len(faulty.OutputF) != n {
			return false
		}
		decay := math.Exp(-math.Pi * math.Pi * 0.05)
		for i := 0; i < n; i++ {
			x := float64(i+1) / float64(n+1)
			want := decay * math.Sin(math.Pi*x)
			got := faulty.OutputF[i]
			// 2e-4 budget: ~1e-4 of discretization error plus headroom.
			if math.IsNaN(got) || math.Abs(got-want) > 2e-4 {
				return false
			}
		}
		return true
	}

	app, err := ipas.FromSci(heatSource, verify, ipas.RunConfig{Ranks: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Sanity: the golden run must verify against itself.
	golden, err := ipas.Execute(app, app.Config)
	if err != nil {
		log.Fatal(err)
	}
	if !verify(golden, golden) {
		log.Fatal("golden run fails verification; fix the kernel or the tolerance first")
	}
	fmt.Printf("heat kernel: %d dynamic instructions per run\n", golden.TotalDyn)

	// How vulnerable is the unprotected kernel?
	campaign, err := ipas.InjectFaults(app, 150, 9)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unprotected outcome mix: symptom %.1f%%, masked %.1f%%, SOC %.1f%%\n",
		100*campaign.Proportion(ipas.OutcomeSymptom),
		100*campaign.Proportion(ipas.OutcomeMasked),
		100*campaign.Proportion(ipas.OutcomeSOC))

	// Steps 2-4 plus evaluation, returning the ideal-point best build.
	best, err := ipas.ProtectBest(app, ipas.Options{
		Samples:    250,
		Grid:       svm.LogGrid(1, 1e5, 5, 1e-5, 1, 4),
		TopN:       3,
		EvalTrials: 100,
		Seed:       9,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("best IPAS build (%s): duplicates %.1f%% of duplicable instructions, "+
		"removes %.1f%% of SOC, costs %.2fx\n",
		best.Label(), best.Stats.DuplicatedPercent(), best.SOCReductionPct, best.Slowdown)
}
