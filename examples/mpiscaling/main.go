// Mpiscaling: the paper's Figure 8 claim in miniature — instruction
// duplication instruments computation only, so the protected/
// unprotected slowdown ratio stays flat as MPI ranks are added. This
// example protects HPCCG with a fixed heuristic (no training, for
// speed) and measures the makespan ratio across rank counts.
package main

import (
	"fmt"
	"log"

	"ipas/internal/dup"
	"ipas/internal/interp"
	"ipas/internal/ir"
	"ipas/internal/workloads"
)

func main() {
	spec := workloads.MustGet("HPCCG", 1)
	m, err := spec.Compile()
	if err != nil {
		log.Fatal(err)
	}

	// Protect all floating-point computation (a plausible mid-weight
	// policy between nothing and SWIFT-style full duplication).
	prot := ir.CloneModule(m)
	st, err := dup.Protect(prot, func(in *ir.Instr) bool {
		switch in.Op() {
		case ir.OpFAdd, ir.OpFSub, ir.OpFMul, ir.OpFDiv, ir.OpFCmp:
			return true
		}
		return false
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("HPCCG: duplicated %d of %d duplicable instructions (%.1f%%), %d checks\n",
		st.Duplicated, st.Candidates, st.DuplicatedPercent(), st.Checks)

	unprot, err := interp.Compile(m, nil)
	if err != nil {
		log.Fatal(err)
	}
	protected, err := interp.Compile(prot, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nranks  unprotected-makespan  protected-makespan  slowdown")
	for _, ranks := range []int{1, 2, 4, 8} {
		cfg := spec.BaseConfig(ranks)
		ru := interp.Run(unprot, cfg)
		rp := interp.Run(protected, cfg)
		if ru.Trap != interp.TrapNone || rp.Trap != interp.TrapNone {
			log.Fatalf("trap at %d ranks: %v / %v", ranks, ru.Trap, rp.Trap)
		}
		fmt.Printf("%5d  %20d  %18d  %8.2f\n",
			ranks, ru.MaxRankDyn, rp.MaxRankDyn,
			float64(rp.MaxRankDyn)/float64(ru.MaxRankDyn))
	}
	fmt.Println("\nThe slowdown column stays essentially constant: duplication adds no")
	fmt.Println("communication, so its relative cost does not grow with scale (Figure 8).")
}
