// Quickstart: run the complete IPAS workflow on the FFT kernel and
// print what each protection variant achieves — the 60-second tour of
// the paper's contribution.
package main

import (
	"fmt"
	"log"

	"ipas"
	"ipas/internal/fault"
	"ipas/internal/svm"
)

func main() {
	// Step 1: an application plus its output-verification routine.
	// FromWorkload bundles one of the paper's five codes with the
	// verification routine of Table 2.
	app, err := ipas.FromWorkload("FFT", 1)
	if err != nil {
		log.Fatal(err)
	}

	// Steps 2-4: fault-injection data collection, SVM training with
	// (C, gamma) grid search, and selective instruction duplication.
	// Scaled-down parameters keep this example around a minute.
	opts := ipas.Options{
		Samples:    250,
		Grid:       svm.LogGrid(1, 1e5, 5, 1e-5, 1, 4),
		TopN:       3,
		EvalTrials: 100,
		Seed:       42,
	}
	res, err := ipas.RunWorkflow(app, opts)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("variant        dup%   SOC%   reduction%  slowdown")
	for _, v := range res.AllVariants() {
		fmt.Printf("%-12s  %5.1f  %5.1f  %9.1f  %8.2f\n",
			v.Label(),
			v.Stats.DuplicatedPercent(),
			100*v.Coverage.Proportion(fault.OutcomeSOC),
			v.SOCReductionPct,
			v.Slowdown)
	}

	best := res.Best(ipas.PolicyIPAS)
	fmt.Printf("\nIPAS ships %s: %.1f%% of the silent output corruption removed "+
		"for a %.2fx slowdown, duplicating only %.1f%% of the duplicable instructions.\n",
		best.Label(), best.SOCReductionPct, best.Slowdown, best.Stats.DuplicatedPercent())
}
