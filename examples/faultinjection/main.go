// Faultinjection: explore the fault model on the CoMD molecular
// dynamics mini-app — which outcomes single-bit flips cause, and how
// sensitivity depends on the flipped bit position (the paper's §2
// motivation: exponent flips hurt, low mantissa flips are masked).
package main

import (
	"fmt"
	"log"

	"ipas"
)

func main() {
	app, err := ipas.FromWorkload("CoMD", 1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := ipas.InjectFaults(app, 400, 2016)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("CoMD: %d single-bit flips into random dynamic instruction results\n", len(res.Trials))
	fmt.Printf("  observable symptom (crash/hang): %5.1f%%\n", 100*res.Proportion(ipas.OutcomeSymptom))
	fmt.Printf("  masked by the physics:           %5.1f%%\n", 100*res.Proportion(ipas.OutcomeMasked))
	fmt.Printf("  silent output corruption:        %5.1f%%\n", 100*res.Proportion(ipas.OutcomeSOC))

	// Sensitivity by flipped bit position, in 8-bit bands. For IEEE-754
	// doubles, band 7 contains the sign and most exponent bits.
	type band struct{ soc, masked, symptom, total int }
	bands := make([]band, 8)
	for _, tr := range res.Trials {
		if tr.Status != ipas.TrialCompleted {
			continue
		}
		b := &bands[tr.Bit/8]
		b.total++
		switch tr.Outcome {
		case ipas.OutcomeSOC:
			b.soc++
		case ipas.OutcomeMasked:
			b.masked++
		case ipas.OutcomeSymptom:
			b.symptom++
		}
	}
	fmt.Println("\nbit band   trials   SOC%   masked%   symptom%")
	for i, b := range bands {
		if b.total == 0 {
			continue
		}
		fmt.Printf("%2d..%2d    %6d  %5.1f  %8.1f  %9.1f\n",
			i*8, i*8+7, b.total,
			100*float64(b.soc)/float64(b.total),
			100*float64(b.masked)/float64(b.total),
			100*float64(b.symptom)/float64(b.total))
	}
	fmt.Println("\nHigh bands flip exponents/signs of doubles and upper address bits;")
	fmt.Println("low bands mostly perturb mantissas that the energy check tolerates.")
}
